// Command quickstart discovers order dependencies on Table 1 of the paper
// (the employee salary/tax relation) and prints the complete, minimal set of
// canonical ODs, reproducing the paper's running example (Examples 1 and 4).
package main

import (
	"context"
	"fmt"
	"log"

	fastod "repro"
)

func main() {
	ds := fastod.EmployeesExample()
	fmt.Printf("Dataset %q: %d tuples, %d attributes: %v\n\n",
		ds.Name(), ds.NumRows(), ds.NumCols(), ds.ColumnNames())

	// Every algorithm runs through the unified Run API; the budget keeps
	// even a pathological input from running away, returning a partial
	// report instead.
	rep, err := ds.Run(context.Background(), fastod.Request{
		Algorithm:  fastod.AlgorithmFASTOD,
		RunOptions: fastod.RunOptions{Budget: fastod.DefaultBudget()},
	})
	if err != nil {
		log.Fatalf("discover: %v", err)
	}
	if rep.Interrupted {
		log.Printf("run interrupted after %d nodes — results are partial", rep.Stats.NodesVisited)
	}
	res := rep.FASTOD

	names := ds.ColumnNames()
	fmt.Printf("Discovered %s canonical ODs in %v:\n", res.Counts, res.Elapsed)
	fmt.Println("\nConstancy ODs (the FD fragment, X: [] -> A):")
	for _, od := range res.ConstancyODs() {
		fmt.Printf("  %s\n", od.NamesString(names))
	}
	fmt.Println("\nOrder-compatibility ODs (X: A ~ B):")
	for _, od := range res.OrderCompatibleODs() {
		fmt.Printf("  %s\n", od.NamesString(names))
	}

	// The paper's Example 1 list-based ODs are all consequences of the
	// discovered canonical set (Theorem 5).
	fmt.Println("\nChecking the paper's Example 1 list-based ODs:")
	examples := [][2][]string{
		{{"sal"}, {"tax"}},
		{{"sal"}, {"perc"}},
		{{"sal"}, {"grp", "subg"}},
		{{"yr", "sal"}, {"yr", "bin"}},
	}
	for _, e := range examples {
		holds, err := ds.CheckListOD(e[0], e[1])
		if err != nil {
			log.Fatalf("check: %v", err)
		}
		fmt.Printf("  %v orders %v : %v\n", e[0], e[1], holds)
	}

	// And a violated one: position does not order salary (Example 3 splits).
	holds, err := ds.CheckListOD([]string{"posit"}, []string{"sal"})
	if err != nil {
		log.Fatalf("check: %v", err)
	}
	fmt.Printf("  [posit] orders [sal] : %v (violated by splits, as in Example 3)\n", holds)
}
