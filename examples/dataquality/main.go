// Command dataquality demonstrates the data-cleaning use of order
// dependencies described in the paper's introduction: ODs express business
// rules (tax grows with salary, surrogate keys grow with time), and rows that
// violate previously holding ODs point at likely data errors.
//
// The example discovers ODs on a clean date-dimension table, injects a few
// value swaps into the d_year column, and then reports exactly which rows
// break which dependencies — the split/swap witnesses of Definitions 4 and 5.
package main

import (
	"fmt"
	"log"

	fastod "repro"
)

func main() {
	clean := fastod.DateDimExample(2 * 365)
	fmt.Printf("Clean dataset %q: %d tuples, %d attributes.\n", clean.Name(), clean.NumRows(), clean.NumCols())

	res, err := clean.Discover(fastod.Options{})
	if err != nil {
		log.Fatalf("discover: %v", err)
	}
	fmt.Printf("Discovered %s canonical ODs on the clean data.\n\n", res.Counts)

	// Keep the business rules with small contexts: they are the most
	// meaningful constraints to monitor.
	var rules []fastod.OD
	for _, od := range res.ODs {
		if od.Context.Len() <= 1 {
			rules = append(rules, od)
		}
	}
	fmt.Printf("Monitoring %d ODs with empty or singleton contexts as business rules.\n\n", len(rules))

	// Simulate data corruption: swap a handful of d_year values between rows.
	dirty, affected, err := clean.WithSwapViolations("d_year", 3, 42)
	if err != nil {
		log.Fatalf("inject: %v", err)
	}
	fmt.Printf("Injected value swaps into column d_year affecting rows %v.\n\n", affected)

	names := dirty.ColumnNames()
	violated := 0
	for _, rule := range rules {
		v, found, err := dirty.FindViolation(rule)
		if err != nil {
			log.Fatalf("check: %v", err)
		}
		if !found {
			continue
		}
		violated++
		kind := "split (functional violation)"
		if v.IsSwap {
			kind = "swap (order violation)"
		}
		fmt.Printf("VIOLATED %-45s %s between rows %d and %d\n",
			rule.NamesString(names), kind, v.RowS, v.RowT)
	}
	if violated == 0 {
		fmt.Println("No monitored OD was violated — try more injected errors.")
		return
	}
	fmt.Printf("\n%d of %d monitored ODs are violated by the corrupted data.\n", violated, len(rules))
	fmt.Println("The witness rows above are the candidates for manual repair.")
}
