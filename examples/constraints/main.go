// Command constraints demonstrates the extension features built on top of
// core discovery: textual OD business rules, approximate ODs (dependencies
// that almost hold, from the paper's future-work list), bidirectional ODs
// (ascending/descending mixes) and the query-optimization advisor.
package main

import (
	"fmt"
	"log"

	fastod "repro"
)

func main() {
	// Start from the clean date dimension, then corrupt a few d_year values
	// so some dependencies only *almost* hold.
	clean := fastod.DateDimExample(2 * 365)
	dirty, affected, err := clean.WithSwapViolations("d_year", 3, 7)
	if err != nil {
		log.Fatalf("inject: %v", err)
	}
	fmt.Printf("Dataset %q with %d corrupted cells (rows %v).\n\n", dirty.Name(), len(affected), affected)

	// 1. Business rules in the textual OD syntax, checked with witnesses.
	rules := `
# calendar business rules
[d_date_sk] -> [d_date]
{}: d_date_sk ~ d_year
{d_year}: [] -> d_version
[d_month] ~ [d_week]
`
	statements, err := fastod.ParseODs(rules)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}
	fmt.Println("Rule check on the corrupted data:")
	for _, st := range statements {
		check, err := dirty.CheckStatement(st)
		if err != nil {
			log.Fatalf("check: %v", err)
		}
		status := "OK    "
		detail := ""
		if !check.Holds {
			status = "FAILED"
			if check.Violation != nil {
				detail = fmt.Sprintf("  (witness rows %d, %d)", check.Violation.RowS, check.Violation.RowT)
			}
			if check.Error != nil {
				detail += fmt.Sprintf("  error=%.4f", check.Error.Rate)
			}
		}
		fmt.Printf("  %s %-28s%s\n", status, st.Source, detail)
	}

	// 2. Approximate discovery recovers the rules that almost hold.
	approxRes, err := dirty.DiscoverApproximate(fastod.ApproxOptions{Threshold: 0.02})
	if err != nil {
		log.Fatalf("approximate discovery: %v", err)
	}
	fmt.Printf("\nApproximate discovery (threshold 2%%) found %s ODs; those with non-zero error:\n", approxRes.Counts())
	shown := 0
	for _, d := range approxRes.ODs {
		if d.Error.Removals == 0 || shown >= 5 {
			continue
		}
		fmt.Printf("  %-40s error=%.4f (%d tuples to repair)\n",
			d.OD.NamesString(dirty.ColumnNames()), d.Error.Rate, d.Error.Removals)
		shown++
	}

	// 3. Bidirectional discovery on a table with opposing trends.
	rows := make([][]string, 0, 48)
	for m := 0; m < 48; m++ {
		rows = append(rows, []string{
			fmt.Sprintf("%d", 2012+m/12), // year
			fmt.Sprintf("%d", m%12+1),    // month
			fmt.Sprintf("%d", 500-3*m),   // remaining_budget (falls over time)
			fmt.Sprintf("%d", 100+2*m),   // cumulative_spend (rises over time)
		})
	}
	ledger, err := fastod.FromRows("ledger", []string{"year", "month", "remaining_budget", "cumulative_spend"}, rows)
	if err != nil {
		log.Fatalf("ledger: %v", err)
	}
	bidi, err := ledger.DiscoverBidirectional(fastod.BidirOptions{})
	if err != nil {
		log.Fatalf("bidirectional discovery: %v", err)
	}
	fmt.Println("\nBidirectional ODs on the ledger (opposite polarities are invisible to unidirectional discovery):")
	for _, od := range bidi.ODs {
		if od.Kind == fastod.OrderCompatible && od.Polarity == fastod.OppositeDirection && od.Context.IsEmpty() {
			fmt.Printf("  %s\n", od.NamesString(ledger.ColumnNames()))
		}
	}

	// 4. The advisor turns clean-data ODs into query rewrites.
	res, err := clean.Discover(fastod.Options{})
	if err != nil {
		log.Fatalf("discover: %v", err)
	}
	adv := fastod.NewAdvisor(res.ODs, res.ColumnNames)
	suggestions, err := adv.Advise(fastod.AdvisorQuery{
		OrderBy:         []string{"d_year", "d_quarter", "d_month"},
		GroupBy:         []string{"d_year", "d_quarter", "d_month"},
		RangePredicates: []string{"d_year"},
		Indexes:         [][]string{{"d_date_sk"}},
	})
	if err != nil {
		log.Fatalf("advise: %v", err)
	}
	fmt.Println("\nOptimizer advice for Query 1 (ORDER BY / GROUP BY d_year, d_quarter, d_month; d_year BETWEEN ...):")
	for _, s := range suggestions {
		fmt.Printf("  [%s] %s\n", s.Kind, s.Message)
	}
}
