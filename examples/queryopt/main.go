// Command queryopt reproduces the query-optimization motivation of the
// paper's introduction (Query 1 over a TPC-DS-style schema): it discovers ODs
// on a date dimension table and shows how they justify eliminating joins and
// sorts.
//
// The two rewrites motivated in Section 1.1 are:
//
//  1. d_date_sk orders d_year: a "between" predicate on d_year can be
//     rewritten into a range over the surrogate key d_date_sk, removing the
//     fact-to-dimension join.
//  2. d_month orders d_quarter: an ORDER BY d_year, d_quarter, d_month can be
//     satisfied by an index on (d_year, d_month), removing a sort.
package main

import (
	"fmt"
	"log"

	fastod "repro"
)

func main() {
	ds := fastod.DateDimExample(3 * 365) // three years of days
	fmt.Printf("Dataset %q: %d tuples, %d attributes: %v\n\n",
		ds.Name(), ds.NumRows(), ds.NumCols(), ds.ColumnNames())

	res, err := ds.Discover(fastod.Options{})
	if err != nil {
		log.Fatalf("discover: %v", err)
	}
	names := ds.ColumnNames()
	fmt.Printf("Discovered %s canonical ODs in %v.\n\n", res.Counts, res.Elapsed)

	cover := fastod.NewCover(res.ODs)
	idx := func(name string) int { return ds.ColumnIndex(name) }

	// Rewrite 1: join elimination. The surrogate key orders the year, so
	// "d_year BETWEEN 2012 AND 2014" becomes a range over d_date_sk.
	skOrdersYear := cover.Implies(fastod.NewConstancyOD([]int{idx("d_date_sk")}, idx("d_year"))) &&
		cover.Implies(fastod.NewOrderCompatibleOD(nil, idx("d_date_sk"), idx("d_year")))
	fmt.Println("Rewrite 1 — join elimination (Query 1's BETWEEN on d_year):")
	fmt.Printf("  d_date_sk orders d_year: %v\n", skOrdersYear)
	if skOrdersYear {
		fmt.Println("  => the BETWEEN predicate on d_year can be restated as a range over the")
		fmt.Println("     surrogate key with two dimension-table probes; the join is eliminated.")
	}

	// Rewrite 2: sort elimination. d_month orders d_quarter, so the ORDER BY
	// d_year, d_quarter, d_month collapses to d_year, d_month.
	monthOrdersQuarter, err := ds.CheckListOD([]string{"d_month"}, []string{"d_quarter"})
	if err != nil {
		log.Fatalf("check: %v", err)
	}
	fmt.Println("\nRewrite 2 — sort/order-by simplification:")
	fmt.Printf("  d_month orders d_quarter: %v\n", monthOrdersQuarter)
	if monthOrdersQuarter {
		fmt.Println("  => ORDER BY d_year, d_quarter, d_month  ≡  ORDER BY d_year, d_month,")
		fmt.Println("     which matches an index on (d_year, d_month); the sort is eliminated.")
	}

	// A constant attribute (d_version) also enables removing it from GROUP BY
	// and ORDER BY clauses entirely.
	constVersion := cover.Implies(fastod.NewConstancyOD(nil, idx("d_version")))
	fmt.Println("\nConstant attribute detection:")
	fmt.Printf("  {}: [] -> d_version: %v (constant columns drop out of GROUP BY / ORDER BY)\n", constVersion)

	// Show the canonical ODs with the smallest contexts: these are the most
	// broadly applicable rewrites.
	fmt.Println("\nCanonical ODs with empty or singleton contexts (most useful for optimization):")
	for _, od := range res.ODs {
		if od.Context.Len() <= 1 {
			fmt.Printf("  %s\n", od.NamesString(names))
		}
	}
}
