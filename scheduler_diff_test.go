package fastod_test

import (
	"context"
	"reflect"
	"sync"
	"testing"

	fastod "repro"
)

// --- Differential tests: the DAG scheduler must produce byte-identical ---
// --- reports to the barrier scheduler, at every worker count, for every ---
// --- algorithm. Only wall-clock fields may differ between runs.         ---

// zeroReportTimings clears every wall-clock field of a report in place so two
// runs can be compared with reflect.DeepEqual: timing is the only thing a
// scheduler or worker count is allowed to change.
func zeroReportTimings(rep *fastod.Report) {
	rep.Elapsed = 0
	switch {
	case rep.FASTOD != nil:
		rep.FASTOD.Elapsed = 0
		for i := range rep.FASTOD.Levels {
			rep.FASTOD.Levels[i].Elapsed = 0
		}
	case rep.TANE != nil:
		rep.TANE.Elapsed = 0
	case rep.Approx != nil:
		rep.Approx.Elapsed = 0
	case rep.Bidir != nil:
		rep.Bidir.Elapsed = 0
	case rep.Conditional != nil:
		rep.Conditional.Elapsed = 0
		rep.Conditional.Global.Elapsed = 0
		for i := range rep.Conditional.Global.Levels {
			rep.Conditional.Global.Levels[i].Elapsed = 0
		}
	case rep.ORDER != nil:
		rep.ORDER.Elapsed = 0
	}
}

// schedulerDiffRequests covers all six algorithms, including a FASTOD ablation
// (no pruning, count-only) whose node set differs radically from the default
// run. ORDER ignores both knobs; it rides along to prove the plumbing does not
// disturb it.
func schedulerDiffRequests() map[string]fastod.Request {
	return map[string]fastod.Request{
		"fastod": {Algorithm: fastod.AlgorithmFASTOD,
			FASTOD: fastod.FASTODRunOptions{CollectLevelStats: true}},
		"fastod-nopruning": {Algorithm: fastod.AlgorithmFASTOD,
			FASTOD: fastod.FASTODRunOptions{DisablePruning: true, CountOnly: true}},
		"tane":   {Algorithm: fastod.AlgorithmTANE},
		"approx": {Algorithm: fastod.AlgorithmApprox, Approx: fastod.ApproxRunOptions{Threshold: 0.05}},
		"bidir":  {Algorithm: fastod.AlgorithmBidirectional},
		"conditional": {Algorithm: fastod.AlgorithmConditional,
			Conditional: fastod.ConditionalRunOptions{MaxConditionCardinality: 8}},
		"order": {Algorithm: fastod.AlgorithmORDER, RunOptions: fastod.RunOptions{MaxLevel: 3}},
	}
}

func TestSchedulerDifferential(t *testing.T) {
	ds := fastod.SyntheticFlight(200, 6, 2017)
	for name, base := range schedulerDiffRequests() {
		t.Run(name, func(t *testing.T) {
			var ref *fastod.Report
			for _, sched := range []fastod.Scheduler{fastod.SchedulerBarrier, fastod.SchedulerDAG} {
				for _, workers := range []int{1, 4} {
					req := base
					req.Workers = workers
					req.Scheduler = sched
					rep, err := ds.Run(context.Background(), req)
					if err != nil {
						t.Fatalf("scheduler=%s workers=%d: %v", sched, workers, err)
					}
					if rep.Interrupted {
						t.Fatalf("scheduler=%s workers=%d: unbudgeted run interrupted", sched, workers)
					}
					zeroReportTimings(rep)
					if ref == nil {
						ref = rep
						continue
					}
					if !reflect.DeepEqual(ref, rep) {
						t.Errorf("scheduler=%s workers=%d: report differs from barrier/workers=1\n got: %+v\nwant: %+v",
							sched, workers, rep, ref)
					}
				}
			}
		})
	}
}

// TestSchedulerDifferentialOrderSpecs repeats the full six-algorithm
// differential under a non-default order spec: direction, NULL placement and
// collation overrides must not introduce any scheduler- or worker-dependence.
// Every run re-encodes through the dataset's spec cache, so this also
// exercises concurrent-ish reuse of one cached spec encoding across runs.
func TestSchedulerDifferentialOrderSpecs(t *testing.T) {
	ds := fastod.SyntheticFlight(200, 6, 2017)
	specs := []fastod.AttrOrder{
		{Column: "dep_time_4", Direction: fastod.OrderDesc, Nulls: fastod.NullsLast},
		{Column: "carrier_name_3", Collation: fastod.CollateCaseInsen},
	}
	for name, base := range schedulerDiffRequests() {
		t.Run(name, func(t *testing.T) {
			var ref *fastod.Report
			for _, sched := range []fastod.Scheduler{fastod.SchedulerBarrier, fastod.SchedulerDAG} {
				for _, workers := range []int{1, 4} {
					req := base
					req.Workers = workers
					req.Scheduler = sched
					req.OrderSpecs = specs
					rep, err := ds.Run(context.Background(), req)
					if err != nil {
						t.Fatalf("scheduler=%s workers=%d: %v", sched, workers, err)
					}
					if rep.Interrupted {
						t.Fatalf("scheduler=%s workers=%d: unbudgeted run interrupted", sched, workers)
					}
					zeroReportTimings(rep)
					if ref == nil {
						ref = rep
						continue
					}
					if !reflect.DeepEqual(ref, rep) {
						t.Errorf("scheduler=%s workers=%d: spec-encoded report differs from barrier/workers=1\n got: %+v\nwant: %+v",
							sched, workers, rep, ref)
					}
				}
			}
		})
	}
}

// TestSchedulerDifferentialSecondShape repeats the core differential on a
// dataset with a different correlation shape, so an ordering bug that happens
// to be invisible on one generator still has a second chance to surface.
func TestSchedulerDifferentialSecondShape(t *testing.T) {
	ds := fastod.SyntheticNCVoter(150, 7, 41)
	for _, alg := range []fastod.Algorithm{fastod.AlgorithmFASTOD, fastod.AlgorithmBidirectional} {
		var ref *fastod.Report
		for _, sched := range []fastod.Scheduler{fastod.SchedulerBarrier, fastod.SchedulerDAG} {
			for _, workers := range []int{1, 4} {
				rep, err := ds.Run(context.Background(), fastod.Request{
					Algorithm:  alg,
					RunOptions: fastod.RunOptions{Workers: workers, Scheduler: sched},
				})
				if err != nil {
					t.Fatal(err)
				}
				zeroReportTimings(rep)
				if ref == nil {
					ref = rep
					continue
				}
				if !reflect.DeepEqual(ref, rep) {
					t.Errorf("%s scheduler=%s workers=%d: report differs from barrier/workers=1", alg, sched, workers)
				}
			}
		}
	}
}

// TestSchedulerSharedStoreRace runs both schedulers concurrently against one
// dataset partition store across several algorithms. Under -race this is the
// end-to-end data-race canary for the DAG scheduler's store-first generation;
// without -race it still asserts every run agrees with an uncontended one.
func TestSchedulerSharedStoreRace(t *testing.T) {
	ds := fastod.SyntheticFlight(120, 5, 7)
	ds.EnablePartitionCache(0)
	baseline, err := ds.Run(context.Background(), fastod.Request{})
	if err != nil {
		t.Fatal(err)
	}
	algs := []fastod.Algorithm{
		fastod.AlgorithmFASTOD, fastod.AlgorithmTANE,
		fastod.AlgorithmApprox, fastod.AlgorithmBidirectional,
	}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sched := fastod.SchedulerDAG
			if i%2 == 0 {
				sched = fastod.SchedulerBarrier
			}
			req := fastod.Request{
				Algorithm:  algs[i%len(algs)],
				RunOptions: fastod.RunOptions{Workers: 2, Scheduler: sched},
			}
			rep, err := ds.Run(context.Background(), req)
			if err != nil {
				t.Errorf("goroutine %d (%s/%s): %v", i, req.Algorithm, sched, err)
				return
			}
			if req.Algorithm == fastod.AlgorithmFASTOD {
				if got, want := rep.FASTOD.Counts, baseline.FASTOD.Counts; got != want {
					t.Errorf("goroutine %d (%s): counts %+v differ from uncontended baseline %+v", i, sched, got, want)
				}
			}
		}(i)
	}
	wg.Wait()
}
