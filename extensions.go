package fastod

import (
	"context"
	"fmt"

	"repro/internal/advisor"
	"repro/internal/approx"
	"repro/internal/bidir"
	"repro/internal/canonical"
	"repro/internal/conditional"
	"repro/internal/listod"
	"repro/internal/odparse"
)

// This file exposes the extension modules: approximate ODs and bidirectional
// ODs (the future-work directions named in the paper's conclusion), the
// query-optimization advisor built on discovered ODs, and the textual OD
// syntax used to exchange dependencies with users and tools.

// Approximate order dependencies.
type (
	// ApproxOptions configures approximate discovery (error threshold).
	ApproxOptions = approx.Options
	// ApproxResult is the outcome of an approximate discovery run.
	ApproxResult = approx.Result
	// ApproxError reports how far an OD is from holding (minimum removals).
	ApproxError = approx.Error
	// ODError pairs an OD with its measured error.
	ODError = approx.ODError
)

// DiscoverApproximate finds the minimal canonical ODs whose error (the
// fraction of tuples that must be removed for the OD to hold exactly) is at
// most the configured threshold. Threshold 0 coincides with exact discovery.
//
// Deprecated: use Run with AlgorithmApprox and Request.Approx.Threshold,
// which adds context cancellation, budgets and progress reporting.
func (d *Dataset) DiscoverApproximate(opts ApproxOptions) (*ApproxResult, error) {
	rep, err := d.RunWithProgress(context.Background(), Request{
		Algorithm: AlgorithmApprox,
		RunOptions: RunOptions{
			Workers:    opts.Workers,
			MaxLevel:   opts.MaxLevel,
			Budget:     opts.Budget,
			Partitions: opts.Partitions,
		},
		Approx: ApproxRunOptions{Threshold: opts.Threshold},
	}, opts.Progress)
	if err != nil {
		return nil, err
	}
	return rep.Approx, nil
}

// ODErrorOf measures the error of one canonical OD on the dataset.
func (d *Dataset) ODErrorOf(od OD) (ApproxError, error) {
	return approx.ErrorOf(d.enc, od)
}

// ProfileODs measures the error of every given OD, producing a data-quality
// report (exact ODs have error zero).
func (d *Dataset) ProfileODs(ods []OD) ([]ODError, error) {
	return approx.Profile(d.enc, ods)
}

// Bidirectional order dependencies.
type (
	// Direction is the per-attribute sort direction (ascending/descending).
	Direction = bidir.Direction
	// DirectedAttr is one attribute of a bidirectional order specification.
	DirectedAttr = bidir.DirectedAttr
	// BidirSpec is a bidirectional order specification.
	BidirSpec = bidir.Spec
	// BidirOD is a bidirectional canonical OD (with polarity).
	BidirOD = bidir.OD
	// Polarity distinguishes same-direction from opposite-direction
	// order compatibility.
	Polarity = bidir.Polarity
	// BidirOptions configures bidirectional discovery.
	BidirOptions = bidir.Options
	// BidirResult is the outcome of a bidirectional discovery run.
	BidirResult = bidir.Result
)

// Sort directions and polarities re-exported for bidirectional ODs.
const (
	Asc               = bidir.Asc
	Desc              = bidir.Desc
	SameDirection     = bidir.SameDirection
	OppositeDirection = bidir.OppositeDirection
)

// DiscoverBidirectional finds the minimal bidirectional canonical ODs:
// constancy ODs plus order-compatibility ODs annotated with whether the two
// attributes move together or in opposite directions.
//
// Deprecated: use Run with AlgorithmBidirectional, which adds context
// cancellation, budgets and progress reporting.
func (d *Dataset) DiscoverBidirectional(opts BidirOptions) (*BidirResult, error) {
	rep, err := d.RunWithProgress(context.Background(), Request{
		Algorithm: AlgorithmBidirectional,
		RunOptions: RunOptions{
			Workers:    opts.Workers,
			MaxLevel:   opts.MaxLevel,
			Budget:     opts.Budget,
			Partitions: opts.Partitions,
		},
	}, opts.Progress)
	if err != nil {
		return nil, err
	}
	return rep.Bidir, nil
}

// CheckBidirListOD reports whether the bidirectional list OD "left ↦ right"
// holds, with each side given as (column name, direction) pairs.
func (d *Dataset) CheckBidirListOD(left, right []DirectedColumn) (bool, error) {
	l, err := d.bidirSpec(left)
	if err != nil {
		return false, err
	}
	r, err := d.bidirSpec(right)
	if err != nil {
		return false, err
	}
	return bidir.Holds(d.enc, l, r), nil
}

// DirectedColumn names a column together with its sort direction.
type DirectedColumn struct {
	Column string
	Dir    Direction
}

func (d *Dataset) bidirSpec(cols []DirectedColumn) (bidir.Spec, error) {
	out := make(bidir.Spec, 0, len(cols))
	for _, c := range cols {
		idx := d.enc.ColumnIndex(c.Column)
		if idx < 0 {
			return nil, fmt.Errorf("fastod: unknown column %q", c.Column)
		}
		out = append(out, bidir.DirectedAttr{Attr: idx, Dir: c.Dir})
	}
	return out, nil
}

// Conditional order dependencies.
type (
	// ConditionalOptions configures conditional discovery.
	ConditionalOptions = conditional.Options
	// ConditionalResult is the outcome of a conditional discovery run.
	ConditionalResult = conditional.Result
	// ConditionalOD is an OD that holds on the portion of the relation
	// selected by an equality condition, but not unconditionally.
	ConditionalOD = conditional.OD
)

// DiscoverConditional finds ODs that hold on condition-selected portions of
// the dataset (e.g. within each country) but are not implied by the
// unconditional ODs — the conditional-OD extension named in the paper's
// conclusion. Like every other discovery entry it routes through Run, so its
// unconditional pass now draws on the dataset's shared partition cache
// (EnablePartitionCache) unless opts.Discovery.Partitions overrides it;
// slice passes never touch the store (it binds to the full relation).
//
// Deprecated: use Run with AlgorithmConditional and Request.Conditional,
// which adds context cancellation, budgets and progress reporting.
func (d *Dataset) DiscoverConditional(opts ConditionalOptions) (*ConditionalResult, error) {
	rep, err := d.RunWithProgress(context.Background(), Request{
		Algorithm: AlgorithmConditional,
		RunOptions: RunOptions{
			Workers:    opts.Discovery.Workers,
			MaxLevel:   opts.Discovery.MaxLevel,
			Budget:     opts.Discovery.Budget,
			Partitions: opts.Discovery.Partitions,
		},
		FASTOD: FASTODRunOptions{
			DisablePruning:     opts.Discovery.DisablePruning,
			DisableKeyPruning:  opts.Discovery.DisableKeyPruning,
			DisableNodePruning: opts.Discovery.DisableNodePruning,
			NaiveSwapCheck:     opts.Discovery.NaiveSwapCheck,
			CountOnly:          opts.Discovery.CountOnly,
			CollectLevelStats:  opts.Discovery.CollectLevelStats,
		},
		Conditional: ConditionalRunOptions{
			MaxConditionCardinality: opts.MaxConditionCardinality,
			MinSliceRows:            opts.MinSliceRows,
			ConditionAttrs:          opts.ConditionAttrs,
		},
	}, opts.Discovery.Progress)
	if err != nil {
		return nil, err
	}
	return rep.Conditional, nil
}

// Query-optimization advisor.
type (
	// Advisor answers rewrite questions against a set of discovered ODs.
	Advisor = advisor.Advisor
	// AdvisorQuery describes the ordering-relevant parts of a query.
	AdvisorQuery = advisor.Query
	// Suggestion is one piece of query-optimization advice.
	Suggestion = advisor.Suggestion
	// SuggestionKind classifies a suggestion.
	SuggestionKind = advisor.SuggestionKind
)

// Advisor suggestion kinds.
const (
	DropConstant      = advisor.DropConstant
	SimplifiedOrderBy = advisor.SimplifiedOrderBy
	SimplifiedGroupBy = advisor.SimplifiedGroupBy
	SortElimination   = advisor.SortElimination
	JoinElimination   = advisor.JoinElimination
)

// NewAdvisor builds a query-optimization advisor from discovered canonical
// ODs and the dataset's column names (typically Result.ODs and
// Result.ColumnNames).
func NewAdvisor(ods []OD, columnNames []string) *Advisor {
	return advisor.New(ods, columnNames)
}

// Textual OD expressions.
type (
	// Statement is a parsed dependency expression over attribute names.
	Statement = odparse.Statement
	// StatementKind identifies the parsed form (list OD, canonical OD, ...).
	StatementKind = odparse.StatementKind
)

// ParseOD parses one dependency expression, e.g. "[sal] -> [tax]" or
// "{yr}: bin ~ sal".
func ParseOD(input string) (Statement, error) { return odparse.Parse(input) }

// ParseODs parses a newline-separated list of dependency expressions,
// ignoring blank lines and '#' comments.
func ParseODs(input string) ([]Statement, error) { return odparse.ParseAll(input) }

// FormatOD renders a canonical OD in the parseable textual syntax.
func FormatOD(od OD, columnNames []string) string {
	return odparse.FormatCanonical(od, columnNames)
}

// StatementCheck is the outcome of checking one parsed statement against a
// dataset.
type StatementCheck struct {
	Statement Statement
	// Holds reports whether the dependency holds exactly.
	Holds bool
	// Violation carries a witness pair when a canonical statement fails; it
	// is nil for list statements and for holding statements.
	Violation *Violation
	// Error is the approximate error of canonical statements (zero when the
	// statement holds); it is nil for list statements.
	Error *ApproxError
}

// CheckStatement evaluates one parsed dependency expression against the
// dataset: list statements are checked via the list-based semantics,
// canonical statements via the canonical semantics plus a violation witness
// and an approximation error when they fail.
//
// Per-attribute order modifiers in the expression ("salary DESC NULLS LAST")
// are honored: the statement is evaluated against a re-encoding of the
// dataset under the requested orders (cached per spec, shared with Run).
func (d *Dataset) CheckStatement(st Statement) (StatementCheck, error) {
	enc := d.enc
	if len(st.Orders) > 0 {
		orders := make([]AttrOrder, len(st.Orders))
		for i, o := range st.Orders {
			orders[i] = AttrOrder{
				Column:    o.Name,
				Direction: o.Order.Direction,
				Nulls:     o.Order.Nulls,
				Collation: o.Order.Collation,
				Ranks:     o.Order.Ranks,
			}
		}
		var err error
		if enc, err = d.SpecEncoded(orders); err != nil {
			return StatementCheck{}, err
		}
	}
	resolved, err := odparse.Resolve(st, enc.ColumnIndex)
	if err != nil {
		return StatementCheck{}, err
	}
	out := StatementCheck{Statement: st}
	switch st.Kind {
	case odparse.ListOD, odparse.ListOrderCompat:
		l, err := encSpec(enc, st.Left)
		if err != nil {
			return StatementCheck{}, err
		}
		r, err := encSpec(enc, st.Right)
		if err != nil {
			return StatementCheck{}, err
		}
		if st.Kind == odparse.ListOD {
			out.Holds = listod.Holds(enc, l, r)
		} else {
			out.Holds = listod.OrderCompatible(enc, l, r)
		}
		return out, nil
	case odparse.CanonicalConstancy, odparse.CanonicalOrderCompat:
		holds, err := canonical.Holds(enc, resolved.Canonical)
		if err != nil {
			return StatementCheck{}, err
		}
		out.Holds = holds
		e, err := approx.ErrorOf(enc, resolved.Canonical)
		if err != nil {
			return StatementCheck{}, err
		}
		out.Error = &e
		if !holds {
			if v, found, err := canonical.FindViolation(enc, resolved.Canonical); err == nil && found {
				out.Violation = &v
			}
		}
		return out, nil
	default:
		return StatementCheck{}, fmt.Errorf("fastod: unknown statement kind %v", st.Kind)
	}
}
