package fastod_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	fastod "repro"
)

// --- Request.Canonical / Request.Fingerprint: the report-cache key must ---
// --- identify exactly the knobs that can change a completed report.     ---

func TestFingerprintIgnoresExecutionKnobs(t *testing.T) {
	base := fastod.Request{Algorithm: fastod.AlgorithmFASTOD}
	for name, variant := range map[string]fastod.Request{
		"workers 1":          {Algorithm: fastod.AlgorithmFASTOD, RunOptions: fastod.RunOptions{Workers: 1}},
		"workers 8":          {Algorithm: fastod.AlgorithmFASTOD, RunOptions: fastod.RunOptions{Workers: 8}},
		"partition override": {Algorithm: fastod.AlgorithmFASTOD, RunOptions: fastod.RunOptions{Partitions: fastod.NewPartitionStore(0)}},
		"zero algorithm":     {},
	} {
		if got, want := variant.Fingerprint(), base.Fingerprint(); got != want {
			t.Errorf("%s: fingerprint %q != base %q — execution knob leaked into the key", name, got, want)
		}
	}
}

func TestFingerprintSeparatesResultShapingKnobs(t *testing.T) {
	// Every request here asks a genuinely different question, so every
	// fingerprint must be distinct — a collision would silently serve one
	// request's report to another.
	requests := []fastod.Request{
		{},
		{Algorithm: fastod.AlgorithmTANE},
		{Algorithm: fastod.AlgorithmBidirectional},
		{Algorithm: fastod.AlgorithmORDER},
		{Algorithm: fastod.AlgorithmApprox},
		{Algorithm: fastod.AlgorithmApprox, Approx: fastod.ApproxRunOptions{Threshold: 0.05}},
		{Algorithm: fastod.AlgorithmApprox, Approx: fastod.ApproxRunOptions{Threshold: 0.1}},
		{Algorithm: fastod.AlgorithmConditional},
		{RunOptions: fastod.RunOptions{MaxLevel: 2}},
		{RunOptions: fastod.RunOptions{MaxLevel: 3}},
		{RunOptions: fastod.RunOptions{Budget: fastod.Budget{Timeout: time.Second}}},
		{RunOptions: fastod.RunOptions{Budget: fastod.Budget{Timeout: 2 * time.Second}}},
		{RunOptions: fastod.RunOptions{Budget: fastod.Budget{MaxNodes: 100}}},
		{RunOptions: fastod.RunOptions{Budget: fastod.Budget{MaxNodes: 200}}},
		{FASTOD: fastod.FASTODRunOptions{CountOnly: true}},
		{FASTOD: fastod.FASTODRunOptions{DisablePruning: true}},
		{FASTOD: fastod.FASTODRunOptions{CollectLevelStats: true}},
	}
	seen := make(map[string]int)
	for i, r := range requests {
		fp := r.Fingerprint()
		if j, dup := seen[fp]; dup {
			t.Errorf("requests %d and %d collide on fingerprint %q", j, i, fp)
		}
		seen[fp] = i
	}
}

func TestFingerprintConditionalAttrs(t *testing.T) {
	mk := func(attrs []int) fastod.Request {
		return fastod.Request{
			Algorithm:   fastod.AlgorithmConditional,
			Conditional: fastod.ConditionalRunOptions{ConditionAttrs: attrs},
		}
	}
	// Attribute order is irrelevant: the slices enumerated are a set.
	if mk([]int{2, 0, 1}).Fingerprint() != mk([]int{0, 1, 2}).Fingerprint() {
		t.Error("condition attr order changed the fingerprint")
	}
	// nil (auto-enumerate) and empty (no conditions) are different questions.
	if mk(nil).Fingerprint() == mk([]int{}).Fingerprint() {
		t.Error("nil and empty ConditionAttrs collide")
	}
	// With explicit attrs the cardinality bound is unread, so it must not
	// split the key; with nil attrs it steers enumeration, so it must.
	explicit := mk([]int{1})
	explicit.Conditional.MaxConditionCardinality = 99
	if explicit.Fingerprint() != mk([]int{1}).Fingerprint() {
		t.Error("unread MaxConditionCardinality split the key for explicit attrs")
	}
	auto := mk(nil)
	auto.Conditional.MaxConditionCardinality = 99
	if auto.Fingerprint() == mk(nil).Fingerprint() {
		t.Error("MaxConditionCardinality ignored for auto enumeration")
	}
}

func TestCanonicalErasesIrrelevantOptionBlocks(t *testing.T) {
	// Knobs belonging to algorithms the request does not run are unread, so
	// they must not split the cache key.
	r := fastod.Request{
		Algorithm:   fastod.AlgorithmTANE,
		FASTOD:      fastod.FASTODRunOptions{DisablePruning: true, CountOnly: true},
		Approx:      fastod.ApproxRunOptions{Threshold: 0.25},
		Conditional: fastod.ConditionalRunOptions{MinSliceRows: 7},
	}
	plain := fastod.Request{Algorithm: fastod.AlgorithmTANE}
	if r.Fingerprint() != plain.Fingerprint() {
		t.Errorf("irrelevant option blocks split the key:\n %q\n %q", r.Fingerprint(), plain.Fingerprint())
	}
	// CountOnly is forced off by the conditional runner, so it is unread
	// there too.
	cond := fastod.Request{Algorithm: fastod.AlgorithmConditional, FASTOD: fastod.FASTODRunOptions{CountOnly: true}}
	condPlain := fastod.Request{Algorithm: fastod.AlgorithmConditional}
	if cond.Fingerprint() != condPlain.Fingerprint() {
		t.Error("CountOnly split the key for a conditional run that never reads it")
	}
	// But DisablePruning does steer conditional passes.
	condPruned := fastod.Request{Algorithm: fastod.AlgorithmConditional, FASTOD: fastod.FASTODRunOptions{DisablePruning: true}}
	if condPruned.Fingerprint() == condPlain.Fingerprint() {
		t.Error("DisablePruning ignored for a conditional run that reads it")
	}
}

func TestCanonicalIsIdempotent(t *testing.T) {
	for _, r := range []fastod.Request{
		{},
		{Algorithm: fastod.AlgorithmApprox, Approx: fastod.ApproxRunOptions{Threshold: 0.1}, RunOptions: fastod.RunOptions{Workers: 4}},
		{Algorithm: fastod.AlgorithmConditional, Conditional: fastod.ConditionalRunOptions{ConditionAttrs: []int{3, 1}}},
	} {
		once := r.Canonical()
		if twice := once.Canonical(); twice.Fingerprint() != once.Fingerprint() {
			t.Errorf("Canonical not idempotent for %+v", r)
		}
	}
}

// --- Dataset version stamps: every dataset instance is a distinct cache ---
// --- generation, and bumps are monotone.                                ---

func TestDatasetVersionStamps(t *testing.T) {
	ds := fastod.EmployeesExample()
	v0 := ds.Version()
	if v0 == 0 {
		t.Fatal("fresh dataset has no version stamp")
	}
	if v := ds.BumpVersion(); v <= v0 {
		t.Fatalf("BumpVersion %d not greater than %d", v, v0)
	}
	if ds.Version() != ds.Version() {
		t.Fatal("Version not stable between reads")
	}

	// Derived views are new instances and must never share a stamp with the
	// parent — or with each other — so stale cache entries cannot be served
	// for a projection.
	proj := ds.Project(2)
	head := ds.HeadRows(3)
	stamps := map[uint64]string{ds.Version(): "parent"}
	for name, v := range map[string]uint64{"project": proj.Version(), "head": head.Version()} {
		if prev, taken := stamps[v]; taken {
			t.Errorf("%s shares version stamp %d with %s", name, v, prev)
		}
		stamps[v] = name
	}
}

// --- OrderSpecs in the fingerprint: every distinct canonical spec is a ---
// --- distinct cache key, and only canonical content reaches the key.   ---

func TestFingerprintSeparatesOrderSpecs(t *testing.T) {
	mk := func(orders ...fastod.AttrOrder) fastod.Request {
		return fastod.Request{RunOptions: fastod.RunOptions{OrderSpecs: orders}}
	}
	distinct := []fastod.Request{
		mk(),
		mk(fastod.AttrOrder{Column: "a", Direction: fastod.OrderDesc}),
		mk(fastod.AttrOrder{Column: "a", Direction: fastod.OrderDesc, Nulls: fastod.NullsLast}),
		mk(fastod.AttrOrder{Column: "a", Nulls: fastod.NullsLast}),
		mk(fastod.AttrOrder{Column: "b", Direction: fastod.OrderDesc}),
		mk(fastod.AttrOrder{Column: "a", Collation: fastod.CollateNumeric}),
		mk(fastod.AttrOrder{Column: "a", Collation: fastod.CollateCaseInsen}),
		mk(fastod.AttrOrder{Column: "a", Collation: fastod.CollateRank, Ranks: []string{"x", "y"}}),
		mk(fastod.AttrOrder{Column: "a", Collation: fastod.CollateRank, Ranks: []string{"y", "x"}}),
		mk(fastod.AttrOrder{Column: "a", Direction: fastod.OrderDesc},
			fastod.AttrOrder{Column: "b", Direction: fastod.OrderDesc}),
	}
	seen := make(map[string]int)
	for i, r := range distinct {
		fp := r.Fingerprint()
		if j, dup := seen[fp]; dup {
			t.Errorf("specs %d and %d collide on fingerprint %q", j, i, fp)
		}
		seen[fp] = i
	}
}

func TestFingerprintCanonicalizesOrderSpecs(t *testing.T) {
	desc := fastod.AttrOrder{Column: "a", Direction: fastod.OrderDesc}
	descB := fastod.AttrOrder{Column: "b", Direction: fastod.OrderDesc}
	noop := fastod.AttrOrder{Column: "z"} // fully default: canonically erased
	mk := func(orders ...fastod.AttrOrder) fastod.Request {
		return fastod.Request{RunOptions: fastod.RunOptions{OrderSpecs: orders}}
	}
	// Listing order is presentation; default entries are no-ops; an all-default
	// list is the default question.
	if mk(desc, descB).Fingerprint() != mk(descB, desc).Fingerprint() {
		t.Error("spec listing order changed the fingerprint")
	}
	if mk(desc, noop).Fingerprint() != mk(desc).Fingerprint() {
		t.Error("a fully-default spec entry changed the fingerprint")
	}
	if mk(noop).Fingerprint() != mk().Fingerprint() {
		t.Error("an all-default spec list differs from no spec list")
	}
	// Pre-OrderSpec fingerprints are unchanged: the suffix appears only when a
	// canonical spec survives.
	if got := mk().Fingerprint(); strings.Contains(got, "ord=") {
		t.Errorf("default fingerprint %q mentions order specs", got)
	}
	if got := mk(desc).Fingerprint(); !strings.Contains(got, "ord=") {
		t.Errorf("spec fingerprint %q does not mention order specs", got)
	}
}

func TestValidateRejectsBadOrderSpecs(t *testing.T) {
	for name, req := range map[string]fastod.Request{
		"empty column": {RunOptions: fastod.RunOptions{OrderSpecs: []fastod.AttrOrder{{}}}},
		"duplicate column": {RunOptions: fastod.RunOptions{OrderSpecs: []fastod.AttrOrder{
			{Column: "a", Direction: fastod.OrderDesc}, {Column: "a", Nulls: fastod.NullsLast}}}},
		"ranks without rank collation": {RunOptions: fastod.RunOptions{OrderSpecs: []fastod.AttrOrder{
			{Column: "a", Ranks: []string{"x"}}}}},
		"rank collation without ranks": {RunOptions: fastod.RunOptions{OrderSpecs: []fastod.AttrOrder{
			{Column: "a", Collation: fastod.CollateRank}}}},
		"partitions with specs": {RunOptions: fastod.RunOptions{
			Partitions: fastod.NewPartitionStore(0),
			OrderSpecs: []fastod.AttrOrder{{Column: "a", Direction: fastod.OrderDesc}}}},
	} {
		if err := req.Validate(); !errors.Is(err, fastod.ErrInvalidRequest) {
			t.Errorf("%s: Validate() = %v, want ErrInvalidRequest", name, err)
		}
	}
	// A partition override WITH a spec list that canonicalizes away is fine.
	ok := fastod.Request{RunOptions: fastod.RunOptions{
		Partitions: fastod.NewPartitionStore(0),
		OrderSpecs: []fastod.AttrOrder{{Column: "a"}},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("all-default specs with partitions rejected: %v", err)
	}
}

func TestSpecEncodingCache(t *testing.T) {
	ds := fastod.SyntheticFlight(120, 5, 7)
	if n, b := ds.SpecEncodingCacheStats(); n != 0 || b != 0 {
		t.Fatalf("fresh dataset spec cache = %d entries, %d bytes", n, b)
	}
	desc := []fastod.AttrOrder{{Column: "flight_sk", Direction: fastod.OrderDesc}}
	enc1, err := ds.SpecEncoded(desc)
	if err != nil {
		t.Fatalf("SpecEncoded: %v", err)
	}
	enc2, err := ds.SpecEncoded(desc)
	if err != nil {
		t.Fatalf("SpecEncoded (repeat): %v", err)
	}
	if enc1 != enc2 {
		t.Error("repeat SpecEncoded did not return the cached instance")
	}
	if n, b := ds.SpecEncodingCacheStats(); n != 1 || b <= 0 {
		t.Errorf("spec cache after one spec = %d entries, %d bytes, want 1 entry with positive cost", n, b)
	}
	// A second spec is a second entry; the default spec never occupies one.
	if _, err := ds.SpecEncoded([]fastod.AttrOrder{{Column: "year", Nulls: fastod.NullsLast}}); err != nil {
		t.Fatalf("SpecEncoded (second spec): %v", err)
	}
	def1, err := ds.SpecEncoded(nil)
	if err != nil {
		t.Fatalf("SpecEncoded(nil): %v", err)
	}
	def2, err := ds.SpecEncoded([]fastod.AttrOrder{{Column: "year"}}) // all-default list
	if err != nil {
		t.Fatalf("SpecEncoded(all-default): %v", err)
	}
	if def1 != def2 {
		t.Error("default-spec variants did not share the dataset's own encoding")
	}
	if n, _ := ds.SpecEncodingCacheStats(); n != 2 {
		t.Errorf("spec cache = %d entries, want 2", n)
	}
	if _, err := ds.SpecEncoded([]fastod.AttrOrder{{Column: "ghost", Direction: fastod.OrderDesc}}); !errors.Is(err, fastod.ErrInvalidRequest) {
		t.Errorf("unknown column error = %v, want ErrInvalidRequest", err)
	}
}
