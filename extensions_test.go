package fastod_test

import (
	"strings"
	"testing"

	fastod "repro"
)

func TestDiscoverApproximatePublic(t *testing.T) {
	ds := fastod.DateDimExample(730)
	dirty, _, err := ds.WithSwapViolations("d_year", 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dirty.DiscoverApproximate(fastod.ApproxOptions{Threshold: 0.05})
	if err != nil {
		t.Fatalf("DiscoverApproximate: %v", err)
	}
	if len(res.ODs) == 0 {
		t.Fatal("expected approximate ODs")
	}
	for _, d := range res.ODs {
		if d.Error.Rate > 0.05+1e-12 {
			t.Errorf("OD %v exceeds threshold: %v", d.OD, d.Error.Rate)
		}
	}
	if res.Counts().Total != len(res.ODs) {
		t.Error("Counts inconsistent")
	}
}

func TestODErrorAndProfilePublic(t *testing.T) {
	ds := fastod.EmployeesExample()
	sal, tax, posit := ds.ColumnIndex("sal"), ds.ColumnIndex("tax"), ds.ColumnIndex("posit")
	holding := fastod.NewConstancyOD([]int{sal}, tax)
	violated := fastod.NewConstancyOD([]int{posit}, sal)

	e, err := ds.ODErrorOf(holding)
	if err != nil || e.Removals != 0 {
		t.Errorf("ODErrorOf(holding) = %+v, %v", e, err)
	}
	prof, err := ds.ProfileODs([]fastod.OD{holding, violated})
	if err != nil {
		t.Fatal(err)
	}
	if prof[0].Error.Removals != 0 || prof[1].Error.Removals == 0 {
		t.Errorf("ProfileODs = %+v", prof)
	}
}

func TestDiscoverBidirectionalPublic(t *testing.T) {
	rows := make([][]string, 0, 30)
	for i := 0; i < 30; i++ {
		rows = append(rows, []string{itoa(i), itoa(100 - i), itoa(i % 4)})
	}
	ds, err := fastod.FromRows("opposing", []string{"up", "down", "noise"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.DiscoverBidirectional(fastod.BidirOptions{})
	if err != nil {
		t.Fatalf("DiscoverBidirectional: %v", err)
	}
	found := false
	for _, od := range res.ODs {
		if od.Kind == fastod.OrderCompatible && od.A == 0 && od.B == 1 &&
			od.Context.IsEmpty() && od.Polarity == fastod.OppositeDirection {
			found = true
		}
	}
	if !found {
		t.Error("expected {}: up ~ down (opposite) in the bidirectional output")
	}

	ok, err := ds.CheckBidirListOD(
		[]fastod.DirectedColumn{{Column: "up", Dir: fastod.Asc}},
		[]fastod.DirectedColumn{{Column: "down", Dir: fastod.Desc}},
	)
	if err != nil || !ok {
		t.Errorf("up asc -> down desc = %v, %v", ok, err)
	}
	ok, err = ds.CheckBidirListOD(
		[]fastod.DirectedColumn{{Column: "up", Dir: fastod.Asc}},
		[]fastod.DirectedColumn{{Column: "down", Dir: fastod.Asc}},
	)
	if err != nil || ok {
		t.Errorf("up asc -> down asc = %v, %v (should fail)", ok, err)
	}
	if _, err := ds.CheckBidirListOD([]fastod.DirectedColumn{{Column: "bogus"}}, nil); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := ds.CheckBidirListOD(nil, []fastod.DirectedColumn{{Column: "bogus"}}); err == nil {
		t.Error("unknown column should error")
	}
}

func TestAdvisorPublic(t *testing.T) {
	ds := fastod.DateDimExample(2 * 365)
	res, err := ds.Discover(fastod.Options{})
	if err != nil {
		t.Fatal(err)
	}
	adv := fastod.NewAdvisor(res.ODs, res.ColumnNames)
	suggestions, err := adv.Advise(fastod.AdvisorQuery{
		OrderBy:         []string{"d_year", "d_quarter", "d_month"},
		GroupBy:         []string{"d_year", "d_quarter", "d_month"},
		RangePredicates: []string{"d_year"},
		Indexes:         [][]string{{"d_date_sk"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var kinds []fastod.SuggestionKind
	for _, s := range suggestions {
		kinds = append(kinds, s.Kind)
	}
	want := map[fastod.SuggestionKind]bool{
		fastod.SimplifiedGroupBy: false,
		fastod.SortElimination:   false,
		fastod.JoinElimination:   false,
	}
	for _, k := range kinds {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, got := range want {
		if !got {
			t.Errorf("missing suggestion kind %v in %v", k, kinds)
		}
	}
}

func TestParseAndCheckStatements(t *testing.T) {
	ds := fastod.EmployeesExample()

	input := `
# employee business rules
[sal] -> [tax,perc]
[yr,bin] ~ [yr,sal]
{sal}: [] -> grp
{yr}: bin ~ sal
{posit}: [] -> sal
`
	statements, err := fastod.ParseODs(input)
	if err != nil {
		t.Fatalf("ParseODs: %v", err)
	}
	if len(statements) != 5 {
		t.Fatalf("parsed %d statements, want 5", len(statements))
	}
	wantHolds := []bool{true, true, true, true, false}
	for i, st := range statements {
		check, err := ds.CheckStatement(st)
		if err != nil {
			t.Fatalf("CheckStatement(%q): %v", st.Source, err)
		}
		if check.Holds != wantHolds[i] {
			t.Errorf("statement %q holds = %v, want %v", st.Source, check.Holds, wantHolds[i])
		}
		if !check.Holds && check.Violation == nil {
			t.Errorf("statement %q should carry a violation witness", st.Source)
		}
		if check.Error != nil && check.Holds && check.Error.Removals != 0 {
			t.Errorf("statement %q holds but has non-zero error", st.Source)
		}
	}

	if _, err := fastod.ParseOD("not an od"); err == nil {
		t.Error("expected parse error")
	}
	st, err := fastod.ParseOD("{sal}: [] -> bogus")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.CheckStatement(st); err == nil {
		t.Error("expected resolution error for unknown column")
	}

	// FormatOD round-trips through the parser.
	res, err := ds.Discover(fastod.Options{})
	if err != nil {
		t.Fatal(err)
	}
	text := fastod.FormatOD(res.ODs[0], res.ColumnNames)
	if _, err := fastod.ParseOD(text); err != nil {
		t.Errorf("FormatOD produced unparseable text %q: %v", text, err)
	}
	if !strings.Contains(text, ":") {
		t.Errorf("unexpected canonical syntax %q", text)
	}
}

func TestDiscoverConditionalPublic(t *testing.T) {
	// Two segments with opposite income/rate trends: the OD holds per segment
	// (one of them) but not globally.
	rows := make([][]string, 0, 40)
	for i := 0; i < 20; i++ {
		rows = append(rows, []string{"A", itoa(1000 + 10*i), itoa(10 + i)})
		rows = append(rows, []string{"B", itoa(1000 + 10*i), itoa(500 - i)})
	}
	ds, err := fastod.FromRows("brackets", []string{"country", "income", "rate"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.DiscoverConditional(fastod.ConditionalOptions{})
	if err != nil {
		t.Fatalf("DiscoverConditional: %v", err)
	}
	if res.Global == nil || res.SlicesExamined == 0 {
		t.Fatalf("conditional result incomplete: %+v", res)
	}
	income, rate := ds.ColumnIndex("income"), ds.ColumnIndex("rate")
	found := false
	for _, cod := range res.ODs {
		if cod.OD.Kind == fastod.OrderCompatible && cod.OD.A == income && cod.OD.B == rate && cod.OD.Context.IsEmpty() {
			found = true
		}
	}
	if !found {
		t.Error("expected a conditional {}: income ~ rate")
	}
}

func itoa(v int) string {
	digits := "0123456789"
	if v == 0 {
		return "0"
	}
	var out []byte
	for v > 0 {
		out = append([]byte{digits[v%10]}, out...)
		v /= 10
	}
	return string(out)
}
