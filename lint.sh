#!/usr/bin/env sh
# lint.sh — the one lint entry point, shared by CI and contributors.
#
#   ./lint.sh        (or: make lint)
#
# Runs, in order: gofmt (failing with the offending diff), go vet, staticcheck
# (skipped with a notice when not installed; CI installs it), and the
# project's own analyzer suite, cmd/odlint. odlint findings are also written
# to odlint-findings.txt so CI can publish them as a job summary.
set -eu
cd "$(dirname "$0")"

fail=0

echo "==> gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	gofmt -d $unformatted >&2
	fail=1
fi

echo "==> go vet"
go vet ./... || fail=1

echo "==> staticcheck"
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./... || fail=1
else
	echo "staticcheck not installed; skipping (CI installs it; go install honnef.co/go/tools/cmd/staticcheck@latest)"
fi

echo "==> odlint"
if go run ./cmd/odlint >odlint-findings.txt 2>&1; then
	:
else
	fail=1
fi
if [ -s odlint-findings.txt ]; then
	cat odlint-findings.txt
fi

exit "$fail"
