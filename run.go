package fastod

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/approx"
	"repro/internal/bidir"
	"repro/internal/conditional"
	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/order"
	"repro/internal/tane"
)

// This file is the unified discovery surface: one request/response envelope
// executed by (*Dataset).Run with context cancellation, resource budgets and
// per-level progress across every algorithm the repository implements. The
// per-algorithm Discover* methods remain as thin deprecated wrappers.

// Algorithm selects which discovery algorithm a Request executes. The zero
// value selects FASTOD.
type Algorithm string

// The discovery algorithms of this repository.
const (
	// AlgorithmFASTOD is the paper's set-based OD discovery (the default).
	AlgorithmFASTOD Algorithm = "fastod"
	// AlgorithmTANE is the FD-only TANE baseline.
	AlgorithmTANE Algorithm = "tane"
	// AlgorithmApprox discovers approximate ODs under an error threshold.
	AlgorithmApprox Algorithm = "approx"
	// AlgorithmBidirectional discovers bidirectional (asc/desc) ODs.
	AlgorithmBidirectional Algorithm = "bidir"
	// AlgorithmConditional discovers ODs holding on condition slices.
	AlgorithmConditional Algorithm = "conditional"
	// AlgorithmORDER is the list-based ORDER baseline (factorial search
	// space — budget it).
	AlgorithmORDER Algorithm = "order"
)

// Algorithms lists every algorithm a Request may select, in the order the
// paper introduces them.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgorithmFASTOD, AlgorithmTANE, AlgorithmApprox,
		AlgorithmBidirectional, AlgorithmConditional, AlgorithmORDER,
	}
}

// Budget bounds the resources one discovery run may consume: a wall-clock
// timeout and a visited-node allowance, both optional (the zero value means
// unbounded). An exhausted budget interrupts the run cooperatively — within
// one parallel chunk of work, not one lattice level — and the Report carries
// everything discovered so far with Interrupted set. See lattice.Budget for
// the precise latency contract of each knob.
type Budget = lattice.Budget

// ProgressEvent is one per-level progress report of a running discovery; see
// RunWithProgress.
type ProgressEvent = lattice.ProgressEvent

// SliceInfo identifies the condition slice a conditional per-slice progress
// event describes; see ProgressEvent.Slice and SliceProgressLevel.
type SliceInfo = lattice.SliceInfo

// Scheduler selects how the set-lattice algorithms order node visits: the
// dependency-aware work-stealing scheduler (the default) or the
// level-synchronous barrier. The output is identical either way; see
// lattice.Scheduler for the precise semantics and tradeoffs.
type Scheduler = lattice.Scheduler

// The schedulers a Request may select. The zero value selects SchedulerDAG.
const (
	// SchedulerDAG dispatches a node as soon as its immediate subsets are
	// done, with work stealing (the default).
	SchedulerDAG = lattice.SchedulerDAG
	// SchedulerBarrier synchronizes all workers at every lattice level.
	SchedulerBarrier = lattice.SchedulerBarrier
)

// DefaultBudget is a conservative budget for interactive and service use: no
// discovery call outlives 30 seconds or two million lattice nodes. Narrow
// schemas never notice it; wide schemas (where the lattice explodes
// combinatorially — or factorially, for ORDER) return an interrupted partial
// Report instead of running away.
func DefaultBudget() Budget {
	return Budget{Timeout: 30 * time.Second, MaxNodes: 2_000_000}
}

// RunOptions are the options shared by every algorithm: the worker pool, the
// lattice depth bound, the resource budget and the partition store. The zero
// value runs unbudgeted on all CPUs with the dataset's own store (if
// EnablePartitionCache was called).
type RunOptions struct {
	// Workers is the number of goroutines used per lattice level (0 =
	// GOMAXPROCS, 1 = sequential). The output is identical regardless of the
	// setting. Ignored by ORDER, whose list-lattice search is sequential.
	Workers int
	// Scheduler selects the node-visit ordering of the set-lattice algorithms
	// (FASTOD, TANE, approx, bidir, and conditional's inner passes): the
	// dependency-aware DAG scheduler by default, or the level-synchronous
	// barrier. The output is identical either way — the knob trades the
	// barrier's simpler accounting against the DAG's lower cancellation
	// latency and better load balance. Ignored by ORDER.
	Scheduler Scheduler
	// MaxLevel, when positive, bounds the lattice level processed: attribute
	// set sizes for the set-lattice algorithms, attribute list lengths for
	// ORDER. Stopping at MaxLevel is a normal completion, not an interrupt.
	// Ignored by the conditional algorithm's slice bookkeeping (it applies to
	// its inner FASTOD passes).
	MaxLevel int
	// Budget bounds the run's wall-clock time and visited nodes; see Budget.
	// For the conditional algorithm the budget is shared across the
	// unconditional pass and every slice pass.
	Budget Budget
	// Partitions, when non-nil, overrides the dataset's shared partition
	// store for this run (see EnablePartitionCache and NewPartitionStore).
	// Ignored by ORDER, which does not use stripped partitions. Incompatible
	// with OrderSpecs: a store is bound to one rank encoding, and an order
	// spec selects a different one.
	Partitions *PartitionStore
	// OrderSpecs overrides the ordering semantics of named columns for this
	// run: per attribute, the sort direction (asc/desc), the NULL placement
	// (nulls first/last) and the collation raw values are compared under.
	// Columns not named keep the default order (ascending, NULLS FIRST,
	// type-driven comparison). The dataset is transparently re-encoded under
	// the spec (cached per canonical spec, bounded — see Dataset) and every
	// algorithm runs on the resulting plain ranks; fully-default entries are
	// erased by Canonical, so listing a column with no overrides is identical
	// to not listing it. See the package documentation of internal/relation
	// for the spec-to-rank contract.
	OrderSpecs []AttrOrder
}

// FASTODRunOptions are the FASTOD-specific knobs of a Request, mirroring the
// ablation switches of Options; the zero value is the paper's configuration
// with every optimization enabled. The conditional algorithm also reads them
// for its inner FASTOD passes.
type FASTODRunOptions struct {
	// DisablePruning enumerates every valid OD, minimal or not (Figure 6).
	DisablePruning bool
	// DisableKeyPruning turns off the Lemma 12/13 superkey shortcut.
	DisableKeyPruning bool
	// DisableNodePruning turns off Lemma 11 node deletion.
	DisableNodePruning bool
	// NaiveSwapCheck uses the quadratic per-class swap comparison.
	NaiveSwapCheck bool
	// CountOnly counts ODs without materializing them. Ignored by the
	// conditional algorithm, whose global-cover comparison needs the ODs.
	CountOnly bool
	// CollectLevelStats records per-level timing and OD counts (Figure 7).
	CollectLevelStats bool
}

// ApproxRunOptions are the approximate-discovery knobs of a Request.
type ApproxRunOptions struct {
	// Threshold is the maximum allowed error rate in [0, 1); 0 coincides
	// with exact discovery.
	Threshold float64
}

// ConditionalRunOptions are the conditional-discovery knobs of a Request.
type ConditionalRunOptions struct {
	// MaxConditionCardinality bounds the distinct values of a condition
	// attribute (default 16).
	MaxConditionCardinality int
	// MinSliceRows skips condition values selecting fewer tuples (default 4).
	MinSliceRows int
	// ConditionAttrs restricts which attributes may serve as conditions.
	ConditionAttrs []int
}

// Request describes one discovery run: which algorithm, the shared options,
// and the algorithm-specific sub-options (only the block matching Algorithm
// is read). The zero value is a plain FASTOD run with defaults everywhere.
type Request struct {
	// Algorithm selects the discovery algorithm; the zero value is FASTOD.
	Algorithm Algorithm
	// RunOptions holds the options every algorithm shares.
	RunOptions
	// FASTOD configures FASTOD runs — and, through the conditional
	// algorithm's inner passes, conditional runs.
	FASTOD FASTODRunOptions
	// Approx configures approximate runs.
	Approx ApproxRunOptions
	// Conditional configures conditional runs.
	Conditional ConditionalRunOptions
}

// ErrInvalidRequest marks request-validation failures of Run: the request
// itself is malformed (negative resource knobs, out-of-range threshold,
// unknown algorithm), as opposed to algorithm or input failures. Errors
// returned by Run for such requests wrap it, so transport layers can test
// errors.Is(err, ErrInvalidRequest) and map it to a client error (HTTP 400)
// while everything else stays a server error.
var ErrInvalidRequest = errors.New("fastod: invalid request")

// ErrInternal marks contained engine failures: a worker goroutine panicked
// during discovery (an invariant violation, or an injected fault under
// test), the panic was recovered, sibling workers were drained, and the run
// failed with a typed error instead of killing the process. Every
// *InternalError matches errors.Is(err, ErrInternal); transport layers map
// it to a server error (HTTP 500) and log the captured stack, while
// ErrInvalidRequest stays a client error.
var ErrInternal = errors.New("fastod: internal error")

// InternalError is the typed error Run returns when a panic was recovered
// inside the discovery engine. The process survives and the dataset remains
// usable — the error describes a contained failure of one run, not of the
// service. It matches errors.Is(err, ErrInternal).
type InternalError struct {
	// Message describes the panic: the panic value plus, when known, the
	// lattice node whose processing raised it.
	Message string
	// Node is the lattice node (attribute set) being processed when the
	// panic was raised, rendered like "{A,B,D}"; empty when the panic
	// happened outside node processing.
	Node string
	// Stack is the panicking goroutine's stack captured at recovery. It is
	// for operator logs; transport layers must not echo it to clients.
	Stack []byte
}

func (e *InternalError) Error() string { return "fastod: internal error: " + e.Message }

// Is reports target == ErrInternal, wiring every InternalError into the
// errors.Is taxonomy alongside ErrInvalidRequest.
func (e *InternalError) Is(target error) bool { return target == ErrInternal }

// internalize maps a contained worker panic surfaced by the engine
// (*lattice.PanicError) onto the public typed InternalError; every other
// error passes through unchanged.
func internalize(err error) error {
	var pe *lattice.PanicError
	if errors.As(err, &pe) {
		ie := &InternalError{Message: pe.Error(), Stack: pe.Stack}
		if pe.HasNode {
			ie.Node = pe.Node.String()
		}
		return ie
	}
	return err
}

// Validate checks the request envelope without touching the dataset: shared
// options must be non-negative, the algorithm must be known, and the
// algorithm-specific block actually read by the run (see Request) must be
// in range. Run calls it before any encoding or partition-store work, so a
// bad request fails fast with an ErrInvalidRequest-wrapped error instead of
// surfacing from deep inside an algorithm — or worse, being silently
// coerced (negative Workers used to be clamped to 1 by the engine).
func (r Request) Validate() error {
	if r.Workers < 0 {
		return fmt.Errorf("%w: negative Workers %d (0 selects all CPUs, 1 is sequential)", ErrInvalidRequest, r.Workers)
	}
	if !r.Scheduler.Valid() {
		return fmt.Errorf("%w: unknown scheduler %q (want %q or %q)", ErrInvalidRequest, r.Scheduler, SchedulerDAG, SchedulerBarrier)
	}
	if r.MaxLevel < 0 {
		return fmt.Errorf("%w: negative MaxLevel %d (0 means unlimited)", ErrInvalidRequest, r.MaxLevel)
	}
	if r.Budget.Timeout < 0 {
		return fmt.Errorf("%w: negative Budget.Timeout %v (0 means none)", ErrInvalidRequest, r.Budget.Timeout)
	}
	if r.Budget.MaxNodes < 0 {
		return fmt.Errorf("%w: negative Budget.MaxNodes %d (0 means none)", ErrInvalidRequest, r.Budget.MaxNodes)
	}
	alg := r.Algorithm
	if alg == "" {
		alg = AlgorithmFASTOD
	}
	switch alg {
	case AlgorithmFASTOD, AlgorithmTANE, AlgorithmBidirectional, AlgorithmORDER:
	case AlgorithmApprox:
		// The NaN check is explicit: NaN slips through both range
		// comparisons and would silently yield an empty result (every
		// error-rate comparison against NaN is false).
		if t := r.Approx.Threshold; t < 0 || t >= 1 || math.IsNaN(t) {
			return fmt.Errorf("%w: Approx.Threshold %v outside [0, 1)", ErrInvalidRequest, t)
		}
	case AlgorithmConditional:
		if r.Conditional.MinSliceRows < 0 {
			return fmt.Errorf("%w: negative Conditional.MinSliceRows %d (0 selects the default)", ErrInvalidRequest, r.Conditional.MinSliceRows)
		}
		if r.Conditional.MaxConditionCardinality < 0 {
			return fmt.Errorf("%w: negative Conditional.MaxConditionCardinality %d (0 selects the default)", ErrInvalidRequest, r.Conditional.MaxConditionCardinality)
		}
		seen := make(map[int]bool, len(r.Conditional.ConditionAttrs))
		for _, attr := range r.Conditional.ConditionAttrs {
			if attr < 0 {
				return fmt.Errorf("%w: negative Conditional.ConditionAttrs entry %d", ErrInvalidRequest, attr)
			}
			if seen[attr] {
				// A duplicate would double-discover the attribute's slices:
				// duplicated conditional ODs and double the node budget spent.
				return fmt.Errorf("%w: duplicate Conditional.ConditionAttrs entry %d", ErrInvalidRequest, attr)
			}
			seen[attr] = true
		}
	default:
		return fmt.Errorf("%w: unknown algorithm %q (want one of %v)", ErrInvalidRequest, r.Algorithm, Algorithms())
	}
	if err := validateAttrOrders(r.OrderSpecs); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	if r.Partitions != nil && len(canonicalAttrOrders(r.OrderSpecs)) > 0 {
		// A PartitionStore is bound to exactly one rank encoding; a
		// non-default order spec selects a different encoding, so an explicit
		// store could never be consulted (or worse, would poison itself).
		return fmt.Errorf("%w: Partitions cannot be combined with non-default OrderSpecs (the store is bound to the default encoding)", ErrInvalidRequest)
	}
	return nil
}

// ResolveWorkers maps a RunOptions.Workers-style request onto the concrete
// worker count a run will use: 0 selects all CPUs (GOMAXPROCS). It exists so
// front ends can report the effective parallelism of a run instead of
// echoing the raw setting. Negative values resolve to 1 for historical
// callers, but Run itself rejects them up front (Validate).
func ResolveWorkers(requested int) int { return lattice.ResolveWorkers(requested) }

// ValidateRequest is Validate plus the dataset-aware checks a bare Request
// cannot perform — that Conditional.ConditionAttrs fit the dataset's width
// and that every OrderSpecs entry names an existing column. Run calls it before any encoding or store work; transport layers
// call it to reject invalid requests before committing to a response (e.g.
// before the SSE stream's 200 header goes on the wire).
func (d *Dataset) ValidateRequest(req Request) error {
	if err := req.Validate(); err != nil {
		return err
	}
	if alg := req.Algorithm; alg == AlgorithmConditional {
		for _, attr := range req.Conditional.ConditionAttrs {
			if attr >= d.enc.NumCols() {
				return fmt.Errorf("%w: Conditional.ConditionAttrs entry %d out of range (dataset has %d attributes)",
					ErrInvalidRequest, attr, d.enc.NumCols())
			}
		}
	}
	for _, o := range req.OrderSpecs {
		if d.enc.ColumnIndex(o.Column) < 0 {
			return fmt.Errorf("%w: OrderSpecs names unknown column %q", ErrInvalidRequest, o.Column)
		}
	}
	return nil
}

// Canonical returns the request in its effective form — the request the run
// actually executes once defaults are resolved — with every knob that cannot
// change the run's OUTPUT erased. Two valid requests with equal canonical
// forms produce identical complete reports, which is what makes the form (via
// Fingerprint) a sound cache key:
//
//   - the zero Algorithm becomes AlgorithmFASTOD, its documented meaning;
//   - Workers is erased: the engine's contract is that output is identical
//     for every worker count, so parallelism must not fragment a cache;
//   - Scheduler is erased for the same reason: DAG and barrier runs produce
//     identical reports (the differential suites assert it), so the execution
//     strategy has no place in a request identity;
//   - Partitions is erased: a partition store changes where partitions are
//     cached, never what is computed (callers that do supply an explicit
//     store should not cache across it — see the server's rules — but the
//     pointer itself has no place in a request identity);
//   - the sub-option blocks the selected algorithm never reads are zeroed
//     (e.g. an approx threshold on a FASTOD request is dead weight);
//   - OrderSpecs is canonicalized, NOT erased — ordering semantics change the
//     encoding every algorithm runs on, so they are part of the question. The
//     canonical form drops fully-default entries (naming a column without
//     overriding anything is a no-op) and sorts the rest by column name (each
//     entry configures its column independently, so listing order is
//     presentation); nothing else is folded, so two specs canonicalize equal
//     exactly when they select the same per-column orders;
//   - for conditional runs, FASTOD.CountOnly is forced off (the run overrides
//     it — its global-cover comparison needs materialized ODs), the zero
//     cardinality/row knobs are resolved to their documented defaults, the
//     cardinality bound is erased when ConditionAttrs is explicit (the
//     enumeration never consults it then), and ConditionAttrs is sorted —
//     each attribute's slices are discovered independently and the result is
//     re-sorted, so order cannot change a complete report. (An interrupted
//     run may stop mid-way through the attribute list, so order does affect
//     partial reports — one more reason interrupted reports are never cached.)
//
// Budget is deliberately KEPT: it bounds how much of the search space a run
// may explore, so differently budgeted requests are different questions even
// when both complete.
func (r Request) Canonical() Request {
	if r.Algorithm == "" {
		r.Algorithm = AlgorithmFASTOD
	}
	r.Workers = 0
	r.Scheduler = ""
	r.Partitions = nil
	r.OrderSpecs = canonicalAttrOrders(r.OrderSpecs)
	if r.Algorithm != AlgorithmFASTOD && r.Algorithm != AlgorithmConditional {
		r.FASTOD = FASTODRunOptions{}
	}
	if r.Algorithm != AlgorithmApprox {
		r.Approx = ApproxRunOptions{}
	}
	if r.Algorithm != AlgorithmConditional {
		r.Conditional = ConditionalRunOptions{}
	} else {
		r.FASTOD.CountOnly = false
		if r.Conditional.MinSliceRows == 0 {
			r.Conditional.MinSliceRows = conditional.DefaultMinSliceRows
		}
		if r.Conditional.ConditionAttrs == nil {
			if r.Conditional.MaxConditionCardinality == 0 {
				r.Conditional.MaxConditionCardinality = conditional.DefaultMaxConditionCardinality
			}
		} else {
			// An explicit attribute list (even an empty one, which selects no
			// conditions at all) bypasses the cardinality-bounded enumeration,
			// so the bound is unread and erased.
			r.Conditional.MaxConditionCardinality = 0
			attrs := append([]int(nil), r.Conditional.ConditionAttrs...)
			sort.Ints(attrs)
			r.Conditional.ConditionAttrs = attrs
		}
	}
	return r
}

// Fingerprint returns a stable textual identity of the request's canonical
// form (see Canonical): two valid requests have equal fingerprints exactly
// when their complete runs are interchangeable. It is the request half of a
// report-cache key — pair it with a dataset identity and version, since a
// fingerprint says nothing about the data the request runs against. Only
// fields the selected algorithm actually reads are rendered, so the format
// stays stable when unrelated option blocks grow.
func (r Request) Fingerprint() string {
	c := r.Canonical()
	var b strings.Builder
	fmt.Fprintf(&b, "alg=%s;lvl=%d;to=%d;nodes=%d",
		c.Algorithm, c.MaxLevel, c.Budget.Timeout.Nanoseconds(), c.Budget.MaxNodes)
	if c.Algorithm == AlgorithmFASTOD || c.Algorithm == AlgorithmConditional {
		f := c.FASTOD
		fmt.Fprintf(&b, ";fastod=%t,%t,%t,%t,%t,%t",
			f.DisablePruning, f.DisableKeyPruning, f.DisableNodePruning,
			f.NaiveSwapCheck, f.CountOnly, f.CollectLevelStats)
	}
	switch c.Algorithm {
	case AlgorithmApprox:
		// Hex float formatting is exact: distinct thresholds can never
		// collide the way a rounded decimal rendering could.
		fmt.Fprintf(&b, ";thr=%s", strconv.FormatFloat(c.Approx.Threshold, 'x', -1, 64))
	case AlgorithmConditional:
		fmt.Fprintf(&b, ";card=%d;minrows=%d;attrs=",
			c.Conditional.MaxConditionCardinality, c.Conditional.MinSliceRows)
		if c.Conditional.ConditionAttrs == nil {
			// nil means "enumerate every attribute within the cardinality
			// bound" — a different request than an explicit empty list, which
			// selects no condition attributes at all.
			b.WriteString("auto")
		} else {
			for i, a := range c.Conditional.ConditionAttrs {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.Itoa(a))
			}
		}
	}
	// Rendered only when a non-default spec survives canonicalization, so
	// every pre-existing fingerprint (and cached report key) is unchanged.
	// Column names are quoted — they may contain any delimiter — and rank
	// lists are quoted element-wise, so distinct specs can never collide.
	for _, o := range c.OrderSpecs {
		fmt.Fprintf(&b, ";ord=%s:%d,%d,%d", strconv.Quote(o.Column), o.Direction, o.Nulls, o.Collation)
		for _, v := range o.Ranks {
			b.WriteByte(',')
			b.WriteString(strconv.Quote(v))
		}
	}
	return b.String()
}

// EffectiveWorkers reports the worker count this request's run will actually
// use: ResolveWorkers of the requested value, except for ORDER, whose
// list-lattice search is sequential and ignores Workers entirely.
func (r Request) EffectiveWorkers() int {
	if r.Algorithm == AlgorithmORDER {
		return 1
	}
	return ResolveWorkers(r.Workers)
}

// SliceProgressLevel is the ProgressEvent.Level marker of conditional
// discovery's per-slice events: the unconditional pass reports ordinary
// lattice levels (1, 2, ...), then each processed condition slice reports
// one event with this level, its node count and the cumulative NodesVisited.
const SliceProgressLevel = conditional.SliceProgressLevel

// RunStats are the unified work counters of a Report, comparable across
// algorithms; see lattice.Stats for the field semantics. For the conditional
// algorithm NodesVisited totals the unconditional and slice passes while the
// partition counters describe the unconditional pass; for ORDER the partition
// counters are always zero.
type RunStats = lattice.Stats

// Report is the unified response envelope of Run: the algorithm that ran,
// whether it was interrupted, comparable work counters, and exactly one
// non-nil algorithm-specific result payload.
//
// The partial-result contract: an interrupted run (cancelled context or
// exhausted budget) still returns a non-nil Report with nil error. Its
// payload contains every dependency discovered before the interrupt — for
// the level-wise algorithms that output is complete through the last fully
// processed lattice level, and every reported dependency is individually
// valid (validation happens per candidate; the interrupt only cuts the
// search short). Interrupted distinguishes such partial reports from
// complete ones.
type Report struct {
	// Algorithm is the algorithm that produced this report.
	Algorithm Algorithm
	// Interrupted reports that the run was cut short by context cancellation
	// or budget exhaustion; the payload then holds partial results.
	Interrupted bool
	// Stats holds the unified work counters.
	Stats RunStats
	// Elapsed is the total wall-clock duration of the run.
	Elapsed time.Duration

	// Exactly one of the following is non-nil, matching Algorithm.

	// FASTOD is the payload of AlgorithmFASTOD runs.
	FASTOD *Result
	// TANE is the payload of AlgorithmTANE runs.
	TANE *TANEResult
	// Approx is the payload of AlgorithmApprox runs.
	Approx *ApproxResult
	// Bidir is the payload of AlgorithmBidirectional runs.
	Bidir *BidirResult
	// Conditional is the payload of AlgorithmConditional runs.
	Conditional *ConditionalResult
	// ORDER is the payload of AlgorithmORDER runs.
	ORDER *ORDERResult
}

// Run executes one discovery request. The context is checked cooperatively
// throughout the run — at every lattice level barrier and between parallel
// chunk handouts — so cancellation takes effect within one chunk of work; a
// cancelled or over-budget run returns a partial Report with Interrupted set
// and a nil error (see Report for the partial-result contract). Errors are
// reserved for invalid requests and malformed inputs.
//
// Unless Request.Partitions overrides it, the run uses the dataset's shared
// partition store (EnablePartitionCache), including the conditional
// algorithm's unconditional pass.
func (d *Dataset) Run(ctx context.Context, req Request) (*Report, error) {
	return d.RunWithProgress(ctx, req, nil)
}

// RunWithProgress is Run with a progress stream: onProgress (when non-nil)
// receives one ProgressEvent per completed lattice level — level number,
// nodes visited, partitions cached, elapsed wall-clock — including the
// partial level of an interrupted run. Events are delivered synchronously
// from the discovery goroutine, so the callback must be fast and may safely
// cancel the context to stop the run (the idiomatic way to implement
// caller-side policies the Budget knobs do not cover). For the conditional
// algorithm, per-level events describe the unconditional pass; each condition
// slice processed afterwards reports one event with Level ==
// SliceProgressLevel (slice passes are whole-lattice runs of their own, so a
// long conditional discovery stays observable end to end).
func (d *Dataset) RunWithProgress(ctx context.Context, req Request, onProgress func(ProgressEvent)) (rep *Report, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := d.ValidateRequest(req); err != nil {
		return nil, err
	}
	// Last line of the fault-containment contract: the engine recovers panics
	// on its own goroutines and surfaces them as errors (internalize below),
	// but a panic on the caller's goroutine — report assembly, the sequential
	// ORDER search, a progress callback — would still escape Run without this
	// catch-all. Recover it here so (*Dataset).Run never panics.
	defer func() {
		if rec := recover(); rec != nil {
			rep = nil
			err = &InternalError{
				Message: fmt.Sprintf("%v", rec),
				Stack:   debug.Stack(),
			}
		}
	}()
	rep, err = d.runRequest(ctx, req, onProgress)
	if err != nil {
		return nil, internalize(err)
	}
	return rep, nil
}

// runRequest dispatches a validated request to its algorithm, first
// resolving the rank encoding (and its partition store) the request's order
// spec selects — under the default spec that is the dataset's own encoding;
// otherwise a cached re-encoding. Algorithms are spec-oblivious: they only
// ever see the resolved ranks.
func (d *Dataset) runRequest(ctx context.Context, req Request, onProgress func(ProgressEvent)) (*Report, error) {
	enc, store, err := d.encodingFor(req)
	if err != nil {
		return nil, err
	}
	rep := &Report{Algorithm: req.Algorithm}
	if rep.Algorithm == "" {
		rep.Algorithm = AlgorithmFASTOD
	}
	start := time.Now()
	switch rep.Algorithm {
	case AlgorithmFASTOD:
		res, err := core.DiscoverContext(ctx, enc, d.coreOptions(req, store, onProgress))
		if err != nil {
			return nil, err
		}
		rep.FASTOD = res
		rep.Stats = RunStats{
			NodesVisited:    res.Stats.NodesVisited,
			MaxLevelReached: res.Stats.MaxLevelReached,
			PartitionHits:   res.Stats.PartitionHits,
			PartitionMisses: res.Stats.PartitionMisses,
			Interrupted:     res.Stats.Interrupted,
		}

	case AlgorithmTANE:
		res, err := tane.DiscoverContext(ctx, enc, tane.Options{
			Workers:    req.Workers,
			Scheduler:  req.Scheduler,
			MaxLevel:   req.MaxLevel,
			Budget:     req.Budget,
			Progress:   onProgress,
			Partitions: store,
		})
		if err != nil {
			return nil, err
		}
		rep.TANE = res
		rep.Stats = res.Stats

	case AlgorithmApprox:
		res, err := approx.DiscoverContext(ctx, enc, approx.Options{
			Threshold:  req.Approx.Threshold,
			Workers:    req.Workers,
			Scheduler:  req.Scheduler,
			MaxLevel:   req.MaxLevel,
			Budget:     req.Budget,
			Progress:   onProgress,
			Partitions: store,
		})
		if err != nil {
			return nil, err
		}
		rep.Approx = res
		rep.Stats = res.Stats

	case AlgorithmBidirectional:
		res, err := bidir.DiscoverContext(ctx, enc, bidir.Options{
			Workers:    req.Workers,
			Scheduler:  req.Scheduler,
			MaxLevel:   req.MaxLevel,
			Budget:     req.Budget,
			Progress:   onProgress,
			Partitions: store,
		})
		if err != nil {
			return nil, err
		}
		rep.Bidir = res
		rep.Stats = res.Stats

	case AlgorithmConditional:
		discovery := d.coreOptions(req, store, onProgress)
		// Conditional discovery compares slice ODs against the global cover,
		// which requires materialized ODs on both sides; CountOnly would
		// silently reduce every conditional report to zero findings.
		discovery.CountOnly = false
		res, err := conditional.DiscoverContext(ctx, enc, conditional.Options{
			MaxConditionCardinality: req.Conditional.MaxConditionCardinality,
			MinSliceRows:            req.Conditional.MinSliceRows,
			ConditionAttrs:          req.Conditional.ConditionAttrs,
			Discovery:               discovery,
		})
		if err != nil {
			return nil, err
		}
		rep.Conditional = res
		rep.Stats = RunStats{
			NodesVisited: res.NodesVisited,
			// The deepest level of ANY pass (unconditional or slice), not just
			// the unconditional one — the global pass alone under-reports the
			// run's work, which matters once reports are cached and replayed.
			MaxLevelReached: res.MaxLevelReached,
			PartitionHits:   res.Global.Stats.PartitionHits,
			PartitionMisses: res.Global.Stats.PartitionMisses,
			Interrupted:     res.Interrupted,
		}

	case AlgorithmORDER:
		res, err := order.DiscoverContext(ctx, enc, order.Options{
			Budget:   req.Budget,
			MaxLevel: req.MaxLevel,
			Progress: onProgress,
		})
		if err != nil {
			return nil, err
		}
		rep.ORDER = res
		rep.Stats = RunStats{
			NodesVisited:    res.NodesVisited,
			MaxLevelReached: res.MaxLevelReached,
			Interrupted:     res.Interrupted,
		}

	default:
		// Unreachable: Validate rejected unknown algorithms above. Kept as a
		// safety net should the switches ever drift apart.
		return nil, fmt.Errorf("%w: unknown algorithm %q (want one of %v)", ErrInvalidRequest, req.Algorithm, Algorithms())
	}
	rep.Interrupted = rep.Stats.Interrupted
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// coreOptions assembles the FASTOD options of a request — used both for
// plain FASTOD runs and for the conditional algorithm's inner passes.
func (d *Dataset) coreOptions(req Request, store *PartitionStore, onProgress func(ProgressEvent)) core.Options {
	return core.Options{
		Workers:            req.Workers,
		Scheduler:          req.Scheduler,
		MaxLevel:           req.MaxLevel,
		Budget:             req.Budget,
		Progress:           onProgress,
		Partitions:         store,
		DisablePruning:     req.FASTOD.DisablePruning,
		DisableKeyPruning:  req.FASTOD.DisableKeyPruning,
		DisableNodePruning: req.FASTOD.DisableNodePruning,
		NaiveSwapCheck:     req.FASTOD.NaiveSwapCheck,
		CountOnly:          req.FASTOD.CountOnly,
		CollectLevelStats:  req.FASTOD.CollectLevelStats,
	}
}
