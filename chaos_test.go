package fastod_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	fastod "repro"
	"repro/internal/faultinject"
	"repro/internal/leakcheck"
)

// The chaos sweep drives every registered engine fault point through every
// algorithm, both schedulers and two worker counts, with both fault actions,
// and asserts the containment contract end to end at the public API:
//
//   - the process survives every combination (the suite running to completion
//     is itself the assertion);
//   - a fault with a degradation path (store lookup/eviction errors) leaves
//     the run's result identical to the fault-free baseline;
//   - a fault without one (panics anywhere, errors at must-succeed points)
//     surfaces as fastod.ErrInternal with a captured stack, never as a crash
//     or a silently wrong report;
//   - a schedule whose fault is never reached behaves exactly like no fault;
//   - no combination leaks goroutines, and after the whole sweep every
//     algorithm still produces the baseline result (nothing was poisoned).
func TestChaosEngineFaults(t *testing.T) {
	leakcheck.Check(t)
	ctx := context.Background()
	ds := fastod.SyntheticFlight(100, 5, 2017)

	requests := map[fastod.Algorithm]fastod.Request{
		fastod.AlgorithmFASTOD:        {Algorithm: fastod.AlgorithmFASTOD},
		fastod.AlgorithmTANE:          {Algorithm: fastod.AlgorithmTANE},
		fastod.AlgorithmApprox:        {Algorithm: fastod.AlgorithmApprox, Approx: fastod.ApproxRunOptions{Threshold: 0.1}},
		fastod.AlgorithmBidirectional: {Algorithm: fastod.AlgorithmBidirectional},
		fastod.AlgorithmConditional:   {Algorithm: fastod.AlgorithmConditional},
		fastod.AlgorithmORDER:         {Algorithm: fastod.AlgorithmORDER},
	}

	// smallStore returns a partition store tight enough that the eviction
	// path actually runs (everything fits in a store at the default bound,
	// and an eviction point that is never reached tests nothing).
	smallStore := func() *fastod.PartitionStore { return fastod.NewPartitionStore(1 << 10) }

	baseline := make(map[fastod.Algorithm]int)
	for alg, req := range requests {
		req.Partitions = smallStore()
		rep, err := ds.Run(ctx, req)
		if err != nil {
			t.Fatalf("baseline %s: %v", alg, err)
		}
		baseline[alg] = reportCount(t, rep)
	}

	// The sweep counts outcomes so it can assert about itself: a refactor
	// that silently moves a fault point off the hot path (nothing fires any
	// more) must fail the suite, not just make it vacuous.
	var firedPanic, firedDegrade, unfired int

	seed := int64(0)
	for _, point := range faultinject.EnginePoints {
		for alg, baseReq := range requests {
			for _, sched := range []fastod.Scheduler{fastod.SchedulerDAG, fastod.SchedulerBarrier} {
				for _, workers := range []int{1, 4} {
					for _, action := range []faultinject.Action{faultinject.ActionPanic, faultinject.ActionError} {
						seed++
						name := fmt.Sprintf("%s/%s/%s/w%d/%s", point, alg, sched, workers, action)
						t.Run(name, func(t *testing.T) {
							req := baseReq
							req.Workers = workers
							req.Scheduler = sched
							req.Partitions = smallStore()
							plan := faultinject.Seeded(seed, point, action, 40, 0)
							defer faultinject.Enable(plan)()

							rep, err := ds.Run(ctx, req)

							if plan.Fired() == 0 {
								// The scheduled hit was never reached (e.g. a
								// steal point at one worker, or a schedule past
								// the run's hit count): the run must be
								// indistinguishable from a fault-free one.
								unfired++
								if err != nil {
									t.Fatalf("unfired fault changed the run: %v", err)
								}
								if got := reportCount(t, rep); got != baseline[alg] {
									t.Fatalf("unfired fault changed the result: %d deps, want %d", got, baseline[alg])
								}
								return
							}

							degradable := action == faultinject.ActionError &&
								(point == faultinject.StoreGet || point == faultinject.StoreEvict)
							if degradable {
								firedDegrade++
								// Store faults have a defined degradation path
								// (recompute on failed Get, overshoot on failed
								// evict): the run completes and the result is
								// exactly the baseline.
								if err != nil {
									t.Fatalf("degradable %s fault failed the run: %v", point, err)
								}
								if rep.Interrupted {
									t.Fatal("degraded run marked interrupted")
								}
								if got := reportCount(t, rep); got != baseline[alg] {
									t.Fatalf("degraded run found %d deps, baseline %d", got, baseline[alg])
								}
								return
							}

							// Every other fired fault is a panic by the time it
							// reaches a worker (Hit escalates errors at
							// must-succeed points) and must surface as a typed
							// internal error with the stack attached.
							firedPanic++
							if err == nil {
								t.Fatalf("fired %s fault at hit %d, but the run succeeded", point, plan.Hits(point))
							}
							if !errors.Is(err, fastod.ErrInternal) {
								t.Fatalf("fired fault returned %v (%T), want fastod.ErrInternal", err, err)
							}
							var ie *fastod.InternalError
							if !errors.As(err, &ie) {
								t.Fatalf("error %v does not unwrap to *fastod.InternalError", err)
							}
							if len(ie.Stack) == 0 {
								t.Error("internal error carries no stack")
							}
							if rep != nil {
								t.Errorf("internal error came with a non-nil report")
							}
						})
					}
				}
			}
		}
	}

	t.Logf("chaos sweep: %d contained panics, %d degraded runs, %d unfired schedules", firedPanic, firedDegrade, unfired)
	if firedPanic < 20 {
		t.Errorf("only %d combinations exercised the panic-containment path; the fault points have drifted off the hot paths", firedPanic)
	}
	if firedDegrade < 4 {
		t.Errorf("only %d combinations exercised a degradation path", firedDegrade)
	}

	// After the full sweep (and with no plan armed) every algorithm must
	// still produce the baseline: no fault poisoned shared state.
	for alg, req := range requests {
		req.Partitions = smallStore()
		rep, err := ds.Run(ctx, req)
		if err != nil {
			t.Fatalf("post-sweep %s: %v", alg, err)
		}
		if got := reportCount(t, rep); got != baseline[alg] {
			t.Fatalf("post-sweep %s found %d deps, baseline %d", alg, got, baseline[alg])
		}
	}
}

// reportCount reduces a report to its dependency tally, the cross-run
// comparison key of the sweep.
func reportCount(t *testing.T, rep *fastod.Report) int {
	t.Helper()
	switch {
	case rep.FASTOD != nil:
		return rep.FASTOD.Counts.Total
	case rep.TANE != nil:
		return len(rep.TANE.FDs)
	case rep.Approx != nil:
		return len(rep.Approx.ODs)
	case rep.Bidir != nil:
		return len(rep.Bidir.ODs)
	case rep.Conditional != nil:
		return len(rep.Conditional.ODs)
	case rep.ORDER != nil:
		return len(rep.ORDER.ODs)
	}
	t.Fatal("report carries no payload")
	return -1
}
