package fastod

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/relation"
)

// This file exposes the synthetic datasets used throughout the examples,
// tests and benchmarks. The paper evaluates on four datasets (flight,
// ncvoter, hepatitis, dbtesma) that cannot be redistributed; the generators
// below produce stand-ins with the same schema sizes and dependency
// structure. See DESIGN.md, "Substitutions", for the rationale.

// EmployeesExample returns Table 1 of the paper: the employee salary/tax
// relation used as the running example (6 tuples, 9 attributes).
func EmployeesExample() *Dataset {
	return mustDataset(datagen.Employees())
}

// DateDimExample returns a TPC-DS-style date dimension with the given number
// of days, used by the query-optimization example (Query 1 of the paper).
func DateDimExample(days int) *Dataset {
	return mustDataset(datagen.DateDim(days))
}

// SyntheticFlight returns a flight-like dataset: a constant year column, a
// surrogate key, FD hierarchies and order-compatible schedule columns.
func SyntheticFlight(rows, cols int, seed int64) *Dataset {
	return mustDataset(datagen.FlightLike(rows, cols, seed))
}

// SyntheticNCVoter returns an ncvoter-like dataset: high-cardinality columns
// with few FDs and many order-compatible pairs.
func SyntheticNCVoter(rows, cols int, seed int64) *Dataset {
	return mustDataset(datagen.NCVoterLike(rows, cols, seed))
}

// SyntheticHepatitis returns a hepatitis-like dataset: very few rows and tiny
// categorical domains, which makes many ODs hold. Passing rows <= 0 uses the
// original dataset's 155 rows.
func SyntheticHepatitis(rows, cols int, seed int64) *Dataset {
	return mustDataset(datagen.HepatitisLike(rows, cols, seed))
}

// SyntheticDBTesma returns a dbtesma-like dataset: rich in functional
// dependencies with almost no order-compatible pairs.
func SyntheticDBTesma(rows, cols int, seed int64) *Dataset {
	return mustDataset(datagen.DBTesmaLike(rows, cols, seed))
}

// SyntheticMessy returns a NULL-dense, mixed-type dataset cycling through
// datagen's messy column flavors (integers, inconsistently spelled floats,
// case-varied strings, dates, mixed-layout dates, all-NULL columns), with
// each cell independently NULL at the given density. It exists to stress the
// ordering-semantics layer: NULL placement, collation overrides and the type
// sniffer's fallbacks, rather than the lattice.
func SyntheticMessy(rows, cols int, nullDensity float64, seed int64) *Dataset {
	return mustDataset(datagen.MessyRelation(rows, cols, nullDensity, seed))
}

// WithSwapViolations returns a copy of the dataset in which n pairs of values
// of the named column have been swapped between rows, along with the affected
// row indexes. It is used by the data-quality example to simulate errors that
// violate previously holding ODs.
func (d *Dataset) WithSwapViolations(column string, n int, seed int64) (*Dataset, []int, error) {
	dirty, affected, err := datagen.InjectSwapViolations(d.rel, column, n, seed)
	if err != nil {
		return nil, nil, err
	}
	ds, err := newDataset(dirty)
	if err != nil {
		return nil, nil, err
	}
	return ds, affected, nil
}

func mustDataset(rel *relation.Relation) *Dataset {
	ds, err := newDataset(rel)
	if err != nil {
		panic(fmt.Sprintf("fastod: building built-in dataset %q: %v", rel.Name, err))
	}
	return ds
}
